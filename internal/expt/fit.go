// Package expt is the experiment harness: it regenerates every row of the
// paper's Table 1 (plus the lower-bound measurements and design ablations)
// as scaling tables with fitted log-log exponents, comparing measured
// behaviour against the proved bounds.
package expt

import (
	"errors"
	"math"
)

// Fit is the result of a least-squares fit of log(y) = a + e*log(x).
type Fit struct {
	Exponent float64 // e
	Scale    float64 // exp(a)
	R2       float64 // coefficient of determination in log space
	OK       bool
}

// FitExponent fits a power law y = C * x^e through positive points.
// Points with non-positive coordinates are skipped; at least two distinct
// x values are required.
func FitExponent(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("expt: mismatched series lengths")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return Fit{}, errors.New("expt: need at least two positive points")
	}
	n := float64(len(lx))
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, errors.New("expt: degenerate x values")
	}
	e := (n*sxy - sx*sy) / den
	a := (sy - e*sx) / n
	// R^2.
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range lx {
		pred := a + e*lx[i]
		ssTot += (ly[i] - meanY) * (ly[i] - meanY)
		ssRes += (ly[i] - pred) * (ly[i] - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Exponent: e, Scale: math.Exp(a), R2: r2, OK: true}, nil
}

// TheoryExponent fits the same power law to a theory formula sampled at the
// given sizes — the apples-to-apples comparison target for a measured fit
// over the identical range (log factors make the apparent exponent of, say,
// n^{3/4} log n exceed 3/4 at finite n).
func TheoryExponent(sizes []int, formula func(n int) float64) Fit {
	xs := make([]float64, len(sizes))
	ys := make([]float64, len(sizes))
	for i, n := range sizes {
		xs[i] = float64(n)
		ys[i] = formula(n)
	}
	f, err := FitExponent(xs, ys)
	if err != nil {
		return Fit{}
	}
	return f
}
