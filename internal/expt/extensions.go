package expt

import (
	"fmt"
	"math/rand"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// runExtCount measures the finding < counting < listing hierarchy the
// paper's Table-1 commentary establishes for the clique, on the CONGEST
// side: exact counting needs only Theta(d_max + D) rounds (BFS
// convergecast over two-hop knowledge) while complete listing pays the
// Theorem-2 price — yet counting reveals no triangle identities, which is
// why the listing lower bound does not apply to it.
func runExtCount(cfg Config) (*Table, error) {
	t := &Table{
		ID: "ext-count", Title: "Exact distributed counting vs listing, CONGEST, G(n,1/2)",
		PaperBound: "counting: Theta(d_max + D); listing: O(n^{3/4} log n) (Thm 2)",
		Metric:     "countRounds",
		Cols:       []string{"countRounds", "listerRounds", "count", "oracleCount"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		seed := cfg.Seed + 1000 + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := graph.Gnp(n, 0.5, rng)
		cres, err := agg.CountTriangles(g, 0, cfg.simCfg(seed, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		oracle := oracleCount(g)
		if cres.Count != int64(oracle) {
			return nil, fmt.Errorf("ext-count n=%d: counted %d, oracle %d", n, cres.Count, oracle)
		}
		lres, err := cells.ListAllTriangles(g, core.ListerOptions{}, cfg.simCfg(seed+1, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"countRounds":  float64(cres.Rounds),
			"listerRounds": float64(lres.ScheduledRounds),
			"count":        float64(cres.Count),
			"oracleCount":  float64(oracle),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Finalize(func(n int) float64 { return float64(n) / 2 }) // d_max + D ~ n/2 on G(n,1/2)
	t.Notes = append(t.Notes,
		"count verified exact against the oracle at every size",
		"counting reveals a single number, not triangle identities — the Theorem-3 information argument does not constrain it, which the round gap makes visible")
	return t, nil
}

// runExtTester measures property testing vs exact finding: the tester's
// rounds are independent of n (the paper's Section-1 point that the
// property-testing relaxation is 'significantly easier'), while the exact
// finder pays Theorem 1's polynomial price.
func runExtTester(cfg Config) (*Table, error) {
	const probes = 16
	t := &Table{
		ID: "ext-test", Title: "Triangle-freeness property tester vs Theorem-1 finder",
		PaperBound: "testing: O(1) rounds for constant eps; exact finding: O(n^{2/3} (log n)^{2/3})",
		Metric:     "finderRounds",
		Cols:       []string{"testerRounds", "finderRounds", "testerDetected", "bipartiteFalsePos"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		seed := cfg.Seed + 1100 + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := graph.Gnp(n, 0.5, rng)
		det, tres, err := cells.TestTriangleFreeness(g, probes, cfg.simCfg(seed, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		if err := core.VerifyOneSided(g, tres); err != nil {
			return nil, err
		}
		gb := graph.RandomBipartite(n/2, n-n/2, 0.5, rng)
		fp, bres, err := cells.TestTriangleFreeness(gb, probes, cfg.simCfg(seed+1, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		if err := core.VerifyOneSided(gb, bres); err != nil {
			return nil, err
		}
		if fp {
			return nil, fmt.Errorf("ext-test n=%d: impossible false positive on bipartite input", n)
		}
		_, fres, err := cells.FindTriangles(g, core.FinderOptions{}, cfg.simCfg(seed+2, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"testerRounds":      float64(tres.ScheduledRounds),
			"finderRounds":      float64(fres.ScheduledRounds),
			"testerDetected":    b2f(det),
			"bipartiteFalsePos": b2f(fp),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Finalize(nil)
	t.Notes = append(t.Notes,
		"tester rounds are constant in n; the finder's grow polynomially — the hierarchy the paper draws between testing and exact finding")
	return t, nil
}
