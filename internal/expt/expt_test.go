package expt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFitExponentExact(t *testing.T) {
	cases := []struct {
		name string
		exp  float64
	}{
		{"linear", 1}, {"sqrt", 0.5}, {"cubic", 3}, {"inverse", -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var xs, ys []float64
			for _, x := range []float64{8, 16, 32, 64, 128} {
				xs = append(xs, x)
				ys = append(ys, 5*math.Pow(x, tc.exp))
			}
			f, err := FitExponent(xs, ys)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(f.Exponent-tc.exp) > 1e-9 {
				t.Fatalf("exponent %v, want %v", f.Exponent, tc.exp)
			}
			if math.Abs(f.Scale-5) > 1e-6 {
				t.Fatalf("scale %v, want 5", f.Scale)
			}
			if f.R2 < 0.999999 {
				t.Fatalf("R2 %v for exact power law", f.R2)
			}
		})
	}
}

func TestFitExponentRejectsDegenerate(t *testing.T) {
	if _, err := FitExponent([]float64{2}, []float64{4}); err == nil {
		t.Fatal("want error for single point")
	}
	if _, err := FitExponent([]float64{2, 2}, []float64{4, 8}); err == nil {
		t.Fatal("want error for identical x")
	}
	if _, err := FitExponent([]float64{1, 2}, []float64{3}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	if _, err := FitExponent([]float64{-1, 0}, []float64{1, 1}); err == nil {
		t.Fatal("want error when no positive points remain")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Metric: "rounds", Cols: []string{"rounds"}}
	tbl.AddPoint(16, map[string]float64{"rounds": 8})
	tbl.AddPoint(64, map[string]float64{"rounds": 16})
	tbl.AddPoint(32, map[string]float64{"rounds": 11.3})
	tbl.Finalize(func(n int) float64 { return math.Sqrt(float64(n)) })
	if tbl.Points[0].N != 16 || tbl.Points[2].N != 64 {
		t.Fatal("points not sorted by n")
	}
	if math.Abs(tbl.Measured.Exponent-0.5) > 0.02 {
		t.Fatalf("measured exponent %v, want ~0.5", tbl.Measured.Exponent)
	}
	if math.Abs(tbl.Theory.Exponent-0.5) > 1e-9 {
		t.Fatalf("theory exponent %v, want 0.5", tbl.Theory.Exponent)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "rounds", "fitted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "n,rounds\n16,8\n") {
		t.Fatalf("csv unexpected:\n%s", buf.String())
	}
}

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%s) failed: %v", e.ID, err)
		}
		if e.Run == nil {
			t.Fatalf("experiment %s has no Run", e.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("want error for unknown id")
	}
}

// TestQuickExperimentsRun exercises every registered experiment end to end
// at smoke sizes; each experiment self-verifies correctness internally.
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs all experiments")
	}
	cfg := Config{Quick: true, Seed: 42, Sizes: []int{20, 28, 36}}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Points) == 0 {
				t.Fatalf("%s: no points", e.ID)
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
			t.Log("\n" + buf.String())
		})
	}
}
