package expt

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Point is one sweep sample: all measured values for one network size.
type Point struct {
	N    int
	Vals map[string]float64
}

// Table is one experiment's output: a sweep over n with named value
// columns, plus the fitted and theoretical exponents of the headline
// metric.
type Table struct {
	ID         string
	Title      string
	PaperBound string
	Metric     string // headline column fitted against n
	Cols       []string
	Points     []Point
	Measured   Fit
	Theory     Fit
	Notes      []string
}

// AddPoint appends a sample.
func (t *Table) AddPoint(n int, vals map[string]float64) {
	t.Points = append(t.Points, Point{N: n, Vals: vals})
}

// Finalize sorts points by n and fits the headline metric, comparing with
// the theory formula sampled over the same sizes.
func (t *Table) Finalize(theory func(n int) float64) {
	sort.Slice(t.Points, func(i, j int) bool { return t.Points[i].N < t.Points[j].N })
	var xs, ys []float64
	var sizes []int
	for _, p := range t.Points {
		xs = append(xs, float64(p.N))
		ys = append(ys, p.Vals[t.Metric])
		sizes = append(sizes, p.N)
	}
	if f, err := FitExponent(xs, ys); err == nil {
		t.Measured = f
	}
	if theory != nil {
		t.Theory = TheoryExponent(sizes, theory)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	if t.PaperBound != "" {
		fmt.Fprintf(&b, "   paper bound: %s\n", t.PaperBound)
	}
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n")
	for _, c := range t.Cols {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, p := range t.Points {
		fmt.Fprintf(tw, "%d", p.N)
		for _, c := range t.Cols {
			fmt.Fprintf(tw, "\t%s", formatVal(p.Vals[c]))
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if t.Measured.OK {
		fmt.Fprintf(&b, "   fitted %s ~ n^%.3f (R2=%.3f)", t.Metric, t.Measured.Exponent, t.Measured.R2)
		if t.Theory.OK {
			fmt.Fprintf(&b, "; theory over same range ~ n^%.3f", t.Theory.Exponent)
		}
		fmt.Fprintln(&b)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", note)
	}
	fmt.Fprintln(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func formatVal(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e9 && v > -1e9:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// WriteCSV writes the table's points as CSV (n plus value columns).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "n,%s\n", strings.Join(t.Cols, ",")); err != nil {
		return err
	}
	for _, p := range t.Points {
		row := make([]string, 0, len(t.Cols)+1)
		row = append(row, fmt.Sprintf("%d", p.N))
		for _, c := range t.Cols {
			row = append(row, fmt.Sprintf("%g", p.Vals[c]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
