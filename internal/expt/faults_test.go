package expt

import (
	"testing"
)

// TestFaultFamiliesAnchorRow pins the degradation sweep's semantics: the
// severity-0 row is a fault-free re-run, so every recall column is exactly
// 1 and the wrong-output rate is 0; faulted rows keep every recall in
// [0,1]. Run at tiny sizes — the semantics don't depend on scale.
func TestFaultFamiliesAnchorRow(t *testing.T) {
	cfg := Config{Quick: true, Seed: 5, Sizes: []int{18, 24}}
	for _, id := range []string{"faults-crash", "faults-loss", "faults-delay"} {
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Points) != len(cfg.faultSeverities()) && len(tbl.Points) != len(cfg.faultDelays()) {
				t.Fatalf("unexpected row count %d", len(tbl.Points))
			}
			recallCols := 0
			for _, p := range tbl.Points {
				for _, col := range tbl.Cols {
					v, isRecall := p.Vals[col], len(col) > 7 && col[:7] == "recall("
					if !isRecall {
						continue
					}
					recallCols++
					if v < 0 || v > 1 {
						t.Errorf("row %d: %s = %v out of [0,1]", p.N, col, v)
					}
					if p.N == 0 && v != 1 {
						t.Errorf("anchor row: %s = %v, want 1", col, v)
					}
				}
				if p.N == 0 && p.Vals["wrongRate"] != 0 {
					t.Errorf("anchor row: wrongRate = %v, want 0", p.Vals["wrongRate"])
				}
				if p.Vals["words"] <= 0 || p.Vals["rounds"] <= 0 {
					t.Errorf("row %d: empty rounds/words aggregate: %v", p.N, p.Vals)
				}
			}
			if recallCols == 0 {
				t.Fatal("no recall columns found")
			}
		})
	}
}

// TestFaultPlanRowsValidate: every plan the sweep generates is a valid
// plan for its network size (the sweep would fail otherwise, but this
// pins the generator directly, including the at-least-one-crash rule).
func TestFaultPlanRowsValidate(t *testing.T) {
	for _, n := range []int{10, 64, 96} {
		for _, pct := range []int{0, 1, 5, 40, 100} {
			p := crashPlanFor(3, n, pct)
			if err := p.ValidateFor(n); err != nil {
				t.Fatalf("crash plan n=%d pct=%d: %v", n, pct, err)
			}
			if pct > 0 && (p == nil || len(p.Crashes) == 0) {
				t.Fatalf("n=%d pct=%d: no crashes generated", n, pct)
			}
			if pct == 0 && p != nil {
				t.Fatalf("pct=0 generated a plan: %+v", p)
			}
		}
	}
	// Crash node picks must be unique (duplicate entries collapse to the
	// earliest round and would under-report the intended severity).
	p := crashPlanFor(9, 50, 40)
	seen := map[int]bool{}
	for _, c := range p.Crashes {
		if seen[c.Node] {
			t.Fatalf("duplicate crash node %d", c.Node)
		}
		seen[c.Node] = true
	}
	if len(p.Crashes) != 20 {
		t.Fatalf("n=50 pct=40: %d crashes, want 20", len(p.Crashes))
	}
}
