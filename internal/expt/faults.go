package expt

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Fault-degradation family: the paper's algorithms (and the baseline
// listers) re-run under the deterministic fault layer — crash-stop nodes,
// lossy links, adversarial delay — sweeping fault severity against the
// whole algo panel. Rows are severities (percent of nodes crashed, percent
// link loss, max delay rounds); per row every panel algorithm runs twice
// over the same graph and seed, fault-free and faulted, and reports output
// degradation. recall(algo) is the fraction of the algorithm's own
// fault-free output it still produces (1 - recall is the partial-output
// rate); wrongRate is the fraction of all faulted outputs that are not
// triangles of G (the protocols assume reliable channels, so loss can make
// them emit garbage — measuring that is the experiment); rounds and words
// aggregate rounds-to-completion and words delivered across the panel. The
// severity-0 row is the anchor: recall 1, wrongRate 0 by construction.

// faultSeverities returns the crash/loss percentage rows.
func (c Config) faultSeverities() []int {
	if c.Quick {
		return []int{0, 10, 30}
	}
	return []int{0, 5, 10, 20, 40}
}

// faultDelays returns the max-delay rows (rounds).
func (c Config) faultDelays() []int {
	if c.Quick {
		return []int{0, 2, 6}
	}
	return []int{0, 1, 2, 4, 8}
}

// faultSize picks the panel's network size: the largest configured size,
// capped at 96 — the panel is 2 runs x |algos| x |rows| on one graph, so it
// trades the top sweep sizes for row coverage.
func (c Config) faultSize() int {
	sizes := c.sizes()
	n := sizes[0]
	for _, s := range sizes {
		if s <= 96 {
			n = s
		}
	}
	return n
}

// faultAlgo is one panel entry: an algorithm run over a prebuilt graph
// under an arbitrary sim config (the fault plan rides cfg.Faults).
type faultAlgo struct {
	name string
	mode sim.Mode
	run  func(scfg sim.Config) (core.Result, error)
}

// faultPanel builds the algo panel over g: the paper's subroutines and
// composed protocols in CONGEST, plus the clique and broadcast baselines.
func faultPanel(cfg Config, g *graph.Graph) ([]faultAlgo, error) {
	n, bw := g.N(), cfg.bandwidth()
	pf := core.Params{N: n, Eps: core.EpsFindingPure, B: bw}
	pl := core.Params{N: n, Eps: core.EpsListingPure, B: bw}
	single := func(sched *sim.Schedule, mk func(id int) sim.Node) func(sim.Config) (core.Result, error) {
		return func(scfg sim.Config) (core.Result, error) {
			return cells.RunSingle(g, sched, mk, scfg)
		}
	}
	s1, mk1 := core.NewA1(pf)
	s2, mk2, err := core.NewA2(pf)
	if err != nil {
		return nil, err
	}
	s3, mk3 := core.NewA3(pl)
	sx, mkx := core.NewAXR(pl, core.AXROptions{})
	dsched, dmk, err := baseline.NewDolev(g, bw, baseline.DolevCubeRoot)
	if err != nil {
		return nil, err
	}
	bsched, bmk := baseline.NewTwoHop(n, bw, g.MaxDegree(), baseline.TwoHopGlobal)
	return []faultAlgo{
		{"a1", sim.ModeCONGEST, single(s1, mk1)},
		{"a2", sim.ModeCONGEST, single(s2, mk2)},
		{"a3", sim.ModeCONGEST, single(s3, mk3)},
		{"axr", sim.ModeCONGEST, single(sx, mkx)},
		{"find", sim.ModeCONGEST, func(scfg sim.Config) (core.Result, error) {
			_, res, err := cells.FindTriangles(g, core.FinderOptions{}, scfg)
			return res, err
		}},
		{"list", sim.ModeCONGEST, func(scfg sim.Config) (core.Result, error) {
			return cells.ListAllTriangles(g, core.ListerOptions{}, scfg)
		}},
		{"test", sim.ModeCONGEST, func(scfg sim.Config) (core.Result, error) {
			_, res, err := cells.TestTriangleFreeness(g, 16, scfg)
			return res, err
		}},
		{"dolev", sim.ModeClique, single(dsched, dmk)},
		{"bcast2hop", sim.ModeBroadcast, single(bsched, bmk)},
	}, nil
}

// crashPlanFor spreads pct% crash-stop kills (at least one for pct>0)
// across seeded node picks, with crash rounds cycling over the early
// rounds so every schedule length gets hit mid-protocol.
func crashPlanFor(seed int64, n, pct int) *faults.Plan {
	k := n * pct / 100
	if pct > 0 && k == 0 {
		k = 1
	}
	if k == 0 {
		return nil
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	p := &faults.Plan{Seed: seed}
	for i := 0; i < k; i++ {
		p.Crashes = append(p.Crashes, faults.Crash{Node: perm[i], Round: 1 + i%6})
	}
	return p
}

func runFaultsCrash(cfg Config) (*Table, error) {
	return runFaults(cfg, "faults-crash", "crashed nodes (% of n)", cfg.faultSeverities(),
		func(seed int64, n, x int) *faults.Plan { return crashPlanFor(seed, n, x) })
}

func runFaultsLoss(cfg Config) (*Table, error) {
	return runFaults(cfg, "faults-loss", "per-link word loss (%)", cfg.faultSeverities(),
		func(seed int64, n, x int) *faults.Plan {
			if x == 0 {
				return nil
			}
			return &faults.Plan{Seed: seed, Loss: float64(x) / 100}
		})
}

func runFaultsDelay(cfg Config) (*Table, error) {
	return runFaults(cfg, "faults-delay", "max per-link delay (rounds)", cfg.faultDelays(),
		func(seed int64, n, x int) *faults.Plan {
			if x == 0 {
				return nil
			}
			return &faults.Plan{Seed: seed, DelayMax: x}
		})
}

// runFaults is the shared sweep. Cells are (severity, algo) pairs fanned
// across the worker pool; each runs the algorithm fault-free and faulted
// on the shared graph and measures the degradation.
func runFaults(cfg Config, id, axis string, rows []int, mkPlan func(seed int64, n, x int) *faults.Plan) (*Table, error) {
	n := cfg.faultSize()
	rng := rand.New(rand.NewSource(cfg.Seed + 9000))
	g := graph.Gnp(n, 0.5, rng)
	panel, err := faultPanel(cfg, g)
	if err != nil {
		return nil, err
	}
	oracle := make(graph.TriangleSet)
	for _, tr := range graph.ListTriangles(g) {
		oracle.Add(tr)
	}

	cols := make([]string, 0, len(panel)+3)
	for _, a := range panel {
		cols = append(cols, "recall("+a.name+")")
	}
	cols = append(cols, "wrongRate", "rounds", "words")
	t := &Table{
		ID: id, Title: fmt.Sprintf("Fault degradation on G(%d,1/2); rows: %s", n, axis),
		PaperBound: "protocols assume reliable synchronous channels; degradation under faults is measured, not bounded",
		Metric:     "recall(list)",
		Cols:       cols,
	}

	type cell struct {
		x, algo       int
		recall, wrong float64
		outputs       float64
		rounds, words float64
	}
	cs, err := runCells(cfg, len(rows)*len(panel), func(i int) (cell, bool, error) {
		x, a := rows[i/len(panel)], panel[i%len(panel)]
		seed := cfg.Seed + 9100 + int64(i/len(panel))
		scfg := cfg.simCfg(cfg.Seed+9200+int64(i%len(panel)), a.mode)
		base, err := a.run(scfg)
		if err != nil {
			return cell{}, false, fmt.Errorf("%s %s x=%d baseline: %w", id, a.name, x, err)
		}
		plan := mkPlan(seed, n, x)
		if err := plan.ValidateFor(n); err != nil {
			return cell{}, false, fmt.Errorf("%s x=%d: %w", id, x, err)
		}
		scfg.Faults = plan
		res, err := a.run(scfg)
		if err != nil {
			return cell{}, false, fmt.Errorf("%s %s x=%d: %w", id, a.name, x, err)
		}
		c := cell{x: x, algo: i % len(panel),
			rounds: float64(res.Meta.ExecutedRounds), words: float64(res.Metrics.WordsDelivered)}
		kept := 0
		for tr := range res.Union {
			if _, ok := base.Union[tr]; ok {
				kept++
			}
			if _, ok := oracle[tr]; !ok {
				c.wrong++
			}
			c.outputs++
		}
		if len(base.Union) == 0 {
			c.recall = 1
		} else {
			c.recall = float64(kept) / float64(len(base.Union))
		}
		return c, true, nil
	})
	if err != nil {
		return nil, err
	}

	for _, x := range rows {
		vals := map[string]float64{}
		var wrong, outputs float64
		for _, c := range cs {
			if c.x != x {
				continue
			}
			vals["recall("+panel[c.algo].name+")"] = c.recall
			vals["rounds"] += c.rounds
			vals["words"] += c.words
			wrong += c.wrong
			outputs += c.outputs
		}
		if outputs > 0 {
			vals["wrongRate"] = wrong / outputs
		}
		t.AddPoint(x, vals)
	}
	t.Finalize(nil)
	t.Notes = append(t.Notes,
		"recall(algo): fraction of the algorithm's own fault-free output still produced under the row's faults (1 - recall = partial-output rate); severity 0 anchors at 1",
		"wrongRate: faulted outputs that are not triangles of G, over all outputs — reliable-channel protocols may emit garbage under loss",
		"rounds/words: executed rounds and delivered words summed over the panel's faulted runs")
	return t, nil
}
