package expt

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// Per-cell resource reuse. Every sweep cell generates its own graph, so a
// per-graph Runner never gets a second hit — but cell SIZES recur, both
// across an experiment's repetitions and across repeated sweeps (benchmark
// loops, the regression gate, service-driven experiment jobs). The
// package-level EngineCache re-points drained engines at each cell's fresh
// graph (Engine.Rebind keyed by shape: n, mode, bandwidth, parallelism,
// scheduler), and the scratch pool reuses the centralized oracle's buffers
// for per-cell verification. Together they cut a steady-state sweep's
// allocations to graph generation plus the per-node state machines (see
// the allocs-per-op bound in alloc_test.go).

// cells pools engines and node slices across sweep cells. Safe for
// concurrent use by the bounded cell workers.
var cells = core.NewEngineCache()

// oracleScratches pools verification oracles. Workers=1 on purpose:
// verification runs inside already-parallel sweep cells, where a nested
// GOMAXPROCS-wide oracle fan-out would oversubscribe the CPU.
var oracleScratches = sync.Pool{
	New: func() any { return &graph.OracleScratch{Workers: 1} },
}

// verifyListing checks a complete-listing run against the pooled oracle.
func verifyListing(g *graph.Graph, res core.Result) error {
	s := oracleScratches.Get().(*graph.OracleScratch)
	defer oracleScratches.Put(s)
	return core.VerifyListingAgainst(g, s.ListTriangles(g), res)
}

// verifyFinding checks the finding contract against the pooled oracle.
func verifyFinding(g *graph.Graph, res core.Result) error {
	s := oracleScratches.Get().(*graph.OracleScratch)
	defer oracleScratches.Put(s)
	return core.VerifyFindingWithCount(g, s.CountTriangles(g), res)
}

// oracleCount is |T(G)| from the pooled oracle.
func oracleCount(g *graph.Graph) int {
	s := oracleScratches.Get().(*graph.OracleScratch)
	defer oracleScratches.Put(s)
	return s.CountTriangles(g)
}
