package expt

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep parallelism. Every sweep cell — one (algorithm, size, seed) or one
// ablation x-value — derives all of its randomness from its own index, so
// cells are independent and can run concurrently. runCells fans them across
// a bounded worker pool and returns the results in cell-index order, which
// is what makes a Workers>1 table byte-identical to the sequential one (see
// DESIGN.md, "sweep determinism contract").

// workerCount resolves Config.Workers: 0 means GOMAXPROCS, anything else is
// taken literally (1 forces the sequential path).
func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

type cellResult[T any] struct {
	val T
	ok  bool
	err error
}

// runCells evaluates fn(0..count-1) across the config's worker pool and
// returns the kept results in index order. fn reports ok=false to skip a
// cell. When cells fail, the error of the lowest-indexed failing cell is
// returned — the same one a sequential sweep would hit first.
func runCells[T any](cfg Config, count int, fn func(i int) (T, bool, error)) ([]T, error) {
	if count <= 0 {
		return nil, nil
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	outs := make([]cellResult[T], count)
	workers := cfg.workerCount()
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, ok, err := fn(i)
			if err != nil {
				return nil, err
			}
			outs[i] = cellResult[T]{val: v, ok: ok}
		}
	} else {
		var next atomic.Int64
		var failed atomic.Bool
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					// Stop starting cells once one has failed or the sweep
					// is cancelled; in-flight cells finish. The cursor hands
					// out indexes in ascending order, so every unstarted
					// (skipped) cell is higher-indexed than every recorded
					// one, and the lowest-indexed recorded error below is
					// exactly the error a sequential sweep would return.
					if failed.Load() || ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= count {
						return
					}
					v, ok, err := fn(i)
					outs[i] = cellResult[T]{val: v, ok: ok, err: err}
					if err != nil {
						failed.Store(true)
					}
				}
			}()
		}
		wg.Wait()
		for i := range outs {
			if outs[i].err != nil {
				return nil, outs[i].err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kept := make([]T, 0, count)
	for i := range outs {
		if outs[i].ok {
			kept = append(kept, outs[i].val)
		}
	}
	return kept, nil
}

// sizeRow is one sweep row: a network size and its measured columns.
type sizeRow struct {
	n    int
	vals map[string]float64
}

// sweepSizes runs one cell per configured network size — fn returning a nil
// map skips the row — and appends the surviving rows to t in size order,
// regardless of worker count or completion order.
func sweepSizes(t *Table, cfg Config, fn func(i, n int) (map[string]float64, error)) error {
	sizes := cfg.sizes()
	rows, err := runCells(cfg, len(sizes), func(i int) (sizeRow, bool, error) {
		vals, err := fn(i, sizes[i])
		if err != nil || vals == nil {
			return sizeRow{}, false, err
		}
		return sizeRow{n: sizes[i], vals: vals}, true, nil
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		t.AddPoint(r.n, r.vals)
	}
	return nil
}
