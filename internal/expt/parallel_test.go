package expt

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunCellsOrderAndSkips checks the fan-out helper directly: results come
// back in cell order with skips removed, for every worker count.
func TestRunCellsOrderAndSkips(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		cfg := Config{Workers: workers}
		got, err := runCells(cfg, 9, func(i int) (int, bool, error) {
			return i * i, i%3 != 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []int{1, 4, 16, 25, 49, 64}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %v, want %v", workers, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: %v, want %v", workers, got, want)
			}
		}
	}
	if out, err := runCells(Config{}, 0, func(int) (int, bool, error) { return 0, true, nil }); err != nil || out != nil {
		t.Fatalf("empty sweep: %v, %v", out, err)
	}
}

// TestRunCellsFirstErrorByIndex: when several cells fail, the lowest-indexed
// error is reported — the one a sequential sweep would hit first.
func TestRunCellsFirstErrorByIndex(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		_, err := runCells(Config{Workers: workers}, 8, func(i int) (int, bool, error) {
			switch i {
			case 2:
				return 0, false, errLow
			case 6:
				return 0, false, errHigh
			}
			return i, true, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}

// TestRunCellsUsesAllWorkers sanity-checks that the pool actually fans out.
func TestRunCellsUsesAllWorkers(t *testing.T) {
	var peak, cur atomic.Int32
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := runCells(Config{Workers: 4}, 4, func(i int) (int, bool, error) {
			if n := cur.Add(1); n > peak.Load() {
				peak.Store(n)
			}
			<-block
			cur.Add(-1)
			return i, true, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	// All four cells must be in flight before any finishes.
	for peak.Load() < 4 {
	}
	close(block)
	<-done
}

// TestParallelSweepByteIdentical is the sweep determinism contract: a
// Workers>1 run renders (text and CSV) byte-identically to Workers=1, for a
// spread of experiments covering plain sweeps, skipped rows (e2), non-size
// x-axes (ab-hash) and the pooled-runner path (ab-good).
func TestParallelSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs experiments twice")
	}
	for _, id := range []string{"e2", "e9", "ab-hash", "ab-good", "ext-test", "faults-loss"} {
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(workers int) (string, string) {
				// Size 10 exercises the skipped-row path (e2 drops n <= 12).
				cfg := Config{Quick: true, Seed: 7, Sizes: []int{10, 20, 26}, Workers: workers}
				tbl, err := e.Run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var txt, csv bytes.Buffer
				if err := tbl.Render(&txt); err != nil {
					t.Fatal(err)
				}
				if err := tbl.WriteCSV(&csv); err != nil {
					t.Fatal(err)
				}
				return txt.String(), csv.String()
			}
			seqTxt, seqCSV := render(1)
			for _, workers := range []int{2, 4} {
				parTxt, parCSV := render(workers)
				if parTxt != seqTxt {
					t.Fatalf("workers=%d: rendered table differs\n--- seq ---\n%s--- par ---\n%s", workers, seqTxt, parTxt)
				}
				if parCSV != seqCSV {
					t.Fatalf("workers=%d: CSV differs", workers)
				}
			}
		})
	}
}
