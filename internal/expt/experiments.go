package expt

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lower"
	"repro/internal/sim"
)

// Config controls a sweep run.
type Config struct {
	// Ctx, when non-nil, cancels the sweep: no new cell starts after Ctx is
	// done, and the sweep returns Ctx.Err(). In-flight cells finish.
	Ctx context.Context
	// Sizes are the network sizes swept. Nil selects defaults (Quick aware).
	Sizes []int
	// Seed drives all randomness.
	Seed int64
	// Bandwidth is B in words/round (default 2).
	Bandwidth int
	// Quick shrinks defaults for smoke runs.
	Quick bool
	// Parallel runs node state machines on all CPUs.
	Parallel bool
	// Workers bounds the sweep-cell worker pool: independent (algorithm,
	// size, seed) cells run concurrently, with row order and every value
	// byte-identical to a sequential sweep. 0 selects GOMAXPROCS; 1 forces
	// sequential execution.
	Workers int
}

func (c Config) sizes() []int {
	if len(c.Sizes) > 0 {
		out := append([]int(nil), c.Sizes...)
		sort.Ints(out)
		return out
	}
	if c.Quick {
		return []int{24, 32, 48, 64}
	}
	return []int{32, 48, 64, 96, 128, 192}
}

func (c Config) bandwidth() int {
	if c.Bandwidth > 0 {
		return c.Bandwidth
	}
	return 2
}

func (c Config) simCfg(seed int64, mode sim.Mode) sim.Config {
	return sim.Config{
		Mode:           mode,
		BandwidthWords: c.bandwidth(),
		Seed:           seed,
		Parallel:       c.Parallel,
	}
}

// Experiment is a registered, runnable reproduction of one Table-1 row or
// one design ablation.
type Experiment struct {
	ID         string
	Title      string
	PaperBound string
	Run        func(Config) (*Table, error)
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "e1", Title: "Dolev et al. listing, CONGEST clique (n^{1/3} groups)",
			PaperBound: "O(n^{1/3} (log n)^{2/3}) rounds", Run: runE1},
		{ID: "e2", Title: "Dolev et al. degree-aware listing, CONGEST clique",
			PaperBound: "O(d_max^3 / n) rounds", Run: runE2},
		{ID: "e3", Title: "Censor-Hillel et al. clique finding (contextual)",
			PaperBound: "O(n^{0.1572}) rounds", Run: runE3},
		{ID: "e4", Title: "THIS PAPER Thm 1: triangle finding, CONGEST",
			PaperBound: "O(n^{2/3} (log n)^{2/3}) rounds", Run: runE4},
		{ID: "e5", Title: "THIS PAPER Thm 2: triangle listing, CONGEST",
			PaperBound: "O(n^{3/4} log n) rounds", Run: runE5},
		{ID: "e6", Title: "Drucker et al. conditional finding LB (contextual)",
			PaperBound: "Omega(n / (e^{sqrt(log n)} log n)), broadcast CONGEST", Run: runE6},
		{ID: "e7", Title: "THIS PAPER Thm 3: listing LB measurements on G(n,1/2)",
			PaperBound: "Omega(n^{1/3}/log n) rounds; |P(T_w)| = Omega(n^{4/3})", Run: runE7},
		{ID: "e8", Title: "Prop 5: local listing LB measurements",
			PaperBound: "Omega(n/log n) rounds; bits to each node = Omega(n^2)", Run: runE8},
		{ID: "e9", Title: "Trivial two-hop baseline, CONGEST",
			PaperBound: "Theta(d_max) rounds (linear on dense graphs)", Run: runE9},
		{ID: "ab-eps", Title: "Ablation: heaviness exponent eps in the Thm-1 finder",
			PaperBound: "optimum near n^eps = n^{1/3}", Run: runAbEps},
		{ID: "ab-hash", Title: "Ablation: A2 hash bucket count vs heavy-triangle recall",
			PaperBound: "Figure 1 uses floor(n^{eps/2}) buckets", Run: runAbHash},
		{ID: "ab-good", Title: "Ablation: good-node threshold r in A(X,r)",
			PaperBound: "Lemma 3 needs r >= sqrt(54 n^{1+eps} log n)", Run: runAbGood},
		{ID: "ab-route", Title: "Ablation: Dolev routing, direct vs Lenzen-style relays",
			PaperBound: "Lenzen routing: O(max traffic / n) rounds", Run: runAbRoute},
		{ID: "ext-count", Title: "Extension: exact distributed counting vs listing, CONGEST",
			PaperBound: "counting Theta(d_max + D) vs listing O(n^{3/4} log n)", Run: runExtCount},
		{ID: "ext-test", Title: "Extension: triangle-freeness property tester vs exact finding",
			PaperBound: "testing O(1) rounds vs finding O(n^{2/3} (log n)^{2/3})", Run: runExtTester},
		{ID: "churn-window", Title: "Churn: sliding-window stream, incremental oracle vs full recompute",
			PaperBound: "per-batch delta work << O(m^{3/2}) re-listing", Run: runChurnWindow},
		{ID: "churn-flip", Title: "Churn: random edge flips, incremental oracle vs full recompute",
			PaperBound: "per-batch delta work << O(m^{3/2}) re-listing", Run: runChurnFlip},
		{ID: "churn-growth", Title: "Churn: preferential growth, incremental oracle vs full recompute",
			PaperBound: "per-batch delta work << O(m^{3/2}) re-listing", Run: runChurnGrowth},
		{ID: "faults-crash", Title: "Faults: crash-stop nodes vs the algo panel",
			PaperBound: "reliable-model protocols, measured degradation", Run: runFaultsCrash},
		{ID: "faults-loss", Title: "Faults: per-link word loss vs the algo panel",
			PaperBound: "reliable-model protocols, measured degradation", Run: runFaultsLoss},
		{ID: "faults-delay", Title: "Faults: bounded adversarial delay vs the algo panel",
			PaperBound: "reliable-model protocols, measured degradation", Run: runFaultsDelay},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q", id)
}

// --- E1: Dolev cube-root clique listing -------------------------------

func runE1(cfg Config) (*Table, error) {
	t := &Table{
		ID: "e1", Title: "Dolev et al. clique listing on G(n,1/2)",
		PaperBound: "O(n^{1/3} (log n)^{2/3})",
		Metric:     "rounds",
		Cols:       []string{"rounds", "triangles", "totalBits", "maxRecvBits"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		g := graph.Gnp(n, 0.5, rng)
		sched, mk, err := baseline.NewDolev(g, cfg.bandwidth(), baseline.DolevCubeRoot)
		if err != nil {
			return nil, err
		}
		res, err := cells.RunSingle(g, sched, mk, cfg.simCfg(cfg.Seed+int64(i), sim.ModeClique))
		if err != nil {
			return nil, err
		}
		if err := verifyListing(g, res); err != nil {
			return nil, fmt.Errorf("e1 n=%d: %w", n, err)
		}
		_, maxBits := res.Metrics.MaxBitsReceived()
		return map[string]float64{
			"rounds":      float64(res.ScheduledRounds),
			"triangles":   float64(len(res.Union)),
			"totalBits":   float64(res.Metrics.TotalBits()),
			"maxRecvBits": float64(maxBits),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Finalize(func(n int) float64 {
		return math.Cbrt(float64(n)) * math.Pow(math.Log2(float64(n)), 2.0/3.0)
	})
	t.Notes = append(t.Notes, "listing verified complete against the centralized oracle at every size")
	return t, nil
}

// --- E2: Dolev degree-aware clique listing ----------------------------

func runE2(cfg Config) (*Table, error) {
	const d = 12
	t := &Table{
		ID: "e2", Title: fmt.Sprintf("Dolev et al. degree-aware clique listing, near-regular d=%d", d),
		PaperBound: "O(d_max^3/n)",
		Metric:     "rounds",
		Cols:       []string{"rounds", "dmax", "triangles", "totalBits"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		if n <= d {
			return nil, nil // skipped row
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(i)))
		g := graph.NearRegular(n, d, rng)
		sched, mk, err := baseline.NewDolev(g, cfg.bandwidth(), baseline.DolevDegreeAware)
		if err != nil {
			return nil, err
		}
		res, err := cells.RunSingle(g, sched, mk, cfg.simCfg(cfg.Seed+200+int64(i), sim.ModeClique))
		if err != nil {
			return nil, err
		}
		if err := verifyListing(g, res); err != nil {
			return nil, fmt.Errorf("e2 n=%d: %w", n, err)
		}
		return map[string]float64{
			"rounds":    float64(res.ScheduledRounds),
			"dmax":      float64(g.MaxDegree()),
			"triangles": float64(len(res.Union)),
			"totalBits": float64(res.Metrics.TotalBits()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Finalize(func(n int) float64 {
		v := float64(d*d*d) / float64(n)
		if v < 1 {
			v = 1
		}
		return v
	})
	t.Notes = append(t.Notes,
		"with d_max fixed the bound collapses toward O(1); rounds must stay flat/falling as n grows",
		"our direct routing replaces Lenzen routing (see DESIGN.md); constants differ, shape preserved")
	return t, nil
}

// --- E3: contextual clique-finding row --------------------------------

func runE3(cfg Config) (*Table, error) {
	t := &Table{
		ID: "e3", Title: "Censor-Hillel et al. clique finding (formula) vs clique listing LB (formula)",
		PaperBound: "finding O(n^{0.1572}) << listing Omega(n^{1/3}/log n)",
		Metric:     "findingBound",
		Cols:       []string{"findingBound", "listingLB", "separation"},
	}
	for _, n := range cfg.sizes() {
		fb := math.Pow(float64(n), 0.1572)
		lb := lower.PredictedListingRoundLB(n)
		t.AddPoint(n, map[string]float64{
			"findingBound": fb,
			"listingLB":    lb,
			"separation":   lb / fb,
		})
	}
	t.Finalize(func(n int) float64 { return math.Pow(float64(n), 0.1572) })
	t.Notes = append(t.Notes,
		"not re-implemented: requires distributed fast matrix multiplication over the clique (out of scope, see DESIGN.md)",
		"its Table-1 role — listing strictly harder than finding in the clique — is shown by the growing separation column")
	return t, nil
}

// --- E4: Theorem 1 finder ---------------------------------------------

func runE4(cfg Config) (*Table, error) {
	t := &Table{
		ID: "e4", Title: "Theorem 1 finder on G(n,1/2) (plus planted / triangle-free checks)",
		PaperBound: "O(n^{2/3} (log n)^{2/3})",
		Metric:     "rounds",
		Cols:       []string{"rounds", "found", "plantedFound", "bipartiteFound", "totalBits"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		seed := cfg.Seed + 300 + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := graph.Gnp(n, 0.5, rng)
		found, res, err := cells.FindTriangles(g, core.FinderOptions{}, cfg.simCfg(seed, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		if err := verifyFinding(g, res); err != nil {
			return nil, fmt.Errorf("e4 n=%d: %w", n, err)
		}
		gp, _ := graph.PlantedTriangles(n, 2+n/16, rng)
		pFound, pRes, err := cells.FindTriangles(gp, core.FinderOptions{}, cfg.simCfg(seed+1, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		if err := core.VerifyOneSided(gp, pRes); err != nil {
			return nil, err
		}
		gb := graph.RandomBipartite(n/2, n-n/2, 0.5, rng)
		bFound, bRes, err := cells.FindTriangles(gb, core.FinderOptions{}, cfg.simCfg(seed+2, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		if err := core.VerifyOneSided(gb, bRes); err != nil {
			return nil, err
		}
		if bFound {
			return nil, fmt.Errorf("e4 n=%d: impossible — triangle reported in a bipartite graph", n)
		}
		return map[string]float64{
			"rounds":         float64(res.ScheduledRounds),
			"found":          b2f(found),
			"plantedFound":   b2f(pFound),
			"bipartiteFound": b2f(bFound),
			"totalBits":      float64(res.Metrics.TotalBits()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// With the pure exponent n^eps = n^{1/3} (no log correction), one
	// repetition costs O(n^{2/3} (log n)^{3/2}): A1 is n^{2/3} and A3 is
	// r * iterations = n^{2/3} sqrt(log n) * log n. The paper's
	// log-corrected eps trades this down to the stated (log n)^{2/3}; the
	// polynomial exponent 2/3 — the quantity that decides who wins — is
	// identical.
	t.Finalize(func(n int) float64 {
		return math.Pow(float64(n), 2.0/3.0) * math.Pow(math.Log2(float64(n)), 1.5)
	})
	t.Notes = append(t.Notes,
		"theory column uses n^{2/3} (log n)^{3/2}, the bound for the pure eps=1/3 parameterization benchmarked here (paper's log-corrected eps gives (log n)^{2/3})")
	return t, nil
}

// --- E5: Theorem 2 lister ---------------------------------------------

func runE5(cfg Config) (*Table, error) {
	t := &Table{
		ID: "e5", Title: "Theorem 2 lister on G(n,1/2)",
		PaperBound: "O(n^{3/4} log n)",
		Metric:     "rounds",
		Cols:       []string{"rounds", "reps", "triangles", "complete", "totalBits"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		seed := cfg.Seed + 400 + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := graph.Gnp(n, 0.5, rng)
		res, err := cells.ListAllTriangles(g, core.ListerOptions{}, cfg.simCfg(seed, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		complete := 1.0
		if err := verifyListing(g, res); err != nil {
			complete = 0 // probabilistic miss; reported, not fatal
		}
		if err := core.VerifyOneSided(g, res); err != nil {
			return nil, err
		}
		return map[string]float64{
			"rounds":    float64(res.ScheduledRounds),
			"reps":      float64(core.ListerOptions{}.Repetitions(n)),
			"triangles": float64(len(res.Union)),
			"complete":  complete,
			"totalBits": float64(res.Metrics.TotalBits()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// With the pure exponent n^eps = n^{1/2}, one repetition costs
	// O(n^{3/4} (log n)^{3/2}) (A3's r * iterations term) and there are
	// ceil(c log n) repetitions: n^{3/4} (log n)^{5/2} total. The paper's
	// log-corrected eps absorbs the extra polylogs into the stated
	// O(n^{3/4} log n); the polynomial exponent 3/4 is identical.
	t.Finalize(func(n int) float64 {
		return math.Pow(float64(n), 0.75) * math.Pow(math.Log2(float64(n)), 2.5)
	})
	t.Notes = append(t.Notes,
		"theory column uses n^{3/4} (log n)^{5/2}, the bound for the pure eps=1/2 parameterization benchmarked here (paper's log-corrected eps gives n^{3/4} log n)")
	return t, nil
}

// --- E6: contextual Drucker LB row ------------------------------------

func runE6(cfg Config) (*Table, error) {
	t := &Table{
		ID: "e6", Title: "Drucker et al. conditional broadcast-CONGEST finding LB vs broadcast finders",
		PaperBound: "Omega(n / (e^{sqrt(log n)} log n)) conditional, broadcast CONGEST",
		Metric:     "bcastTwoHopRounds",
		Cols:       []string{"druckerLB", "bcastTwoHopRounds", "bcastA1Rounds", "a1HeavyFound"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		seed := cfg.Seed + 500 + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := graph.Gnp(n, 0.5, rng)
		// A complete broadcast-CONGEST finder: two-hop exchange restricted
		// to the one-message-per-round broadcast channel.
		sched, mk := baseline.NewTwoHop(g.N(), cfg.bandwidth(), g.MaxDegree(), baseline.TwoHopGlobal)
		res, err := cells.RunSingle(g, sched, mk, cfg.simCfg(seed, sim.ModeBroadcast))
		if err != nil {
			return nil, err
		}
		if err := verifyListing(g, res); err != nil {
			return nil, fmt.Errorf("e6 n=%d: %w", n, err)
		}
		// Algorithm A1 is also broadcast-legal; on dense G(n,1/2) almost
		// every triangle is heavy, so it finds one with good probability in
		// O(n^{1-eps}) broadcast rounds.
		p := core.Params{N: n, Eps: core.EpsFindingPure, B: cfg.bandwidth()}
		s1, mk1 := core.NewA1(p)
		res1, err := cells.RunSingle(g, s1, mk1, cfg.simCfg(seed+1, sim.ModeBroadcast))
		if err != nil {
			return nil, err
		}
		if err := core.VerifyOneSided(g, res1); err != nil {
			return nil, err
		}
		ln := math.Log(float64(n))
		dlb := float64(n) / (math.Exp(math.Sqrt(ln)) * ln)
		if float64(res.ScheduledRounds) < dlb {
			return nil, fmt.Errorf("e6 n=%d: broadcast lister beat the conditional LB shape — constants need review", n)
		}
		return map[string]float64{
			"druckerLB":         dlb,
			"bcastTwoHopRounds": float64(res.ScheduledRounds),
			"bcastA1Rounds":     float64(res1.ScheduledRounds),
			"a1HeavyFound":      b2f(len(res1.Union) > 0),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Finalize(func(n int) float64 {
		ln := math.Log(float64(n))
		return float64(n) / (math.Exp(math.Sqrt(ln)) * ln)
	})
	t.Notes = append(t.Notes,
		"both finders run in the genuine broadcast CONGEST model (unicast panics); the complete two-hop finder's rounds stay above the conditional LB shape at every size",
		"A1 alone is not a complete finder (heavy triangles only): its rounds grow as the sublinear n^{2/3}, though the constant 4 in its set cap keeps it above the linear baseline at these sizes")
	return t, nil
}

// --- E7: Theorem 3 lower-bound measurements ---------------------------

func runE7(cfg Config) (*Table, error) {
	t := &Table{
		ID: "e7", Title: "Theorem 3 quantities for Dolev clique listing on G(n,1/2)",
		PaperBound: "|P(T_w)| = Omega(n^{4/3}); rounds = Omega(n^{1/3}/log n)",
		Metric:     "PTw",
		Cols: []string{"PTw", "Tw", "bitsRecvW", "infoFloor", "rivinFloor",
			"roundFloor", "measuredRounds", "lbShape"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		seed := cfg.Seed + 600 + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := graph.Gnp(n, 0.5, rng)
		sched, mk, err := baseline.NewDolev(g, cfg.bandwidth(), baseline.DolevCubeRoot)
		if err != nil {
			return nil, err
		}
		res, err := cells.RunSingle(g, sched, mk, cfg.simCfg(seed, sim.ModeClique))
		if err != nil {
			return nil, err
		}
		rep := lower.Analyze(g, res.Outputs, res.Metrics)
		if err := rep.Check(); err != nil {
			return nil, fmt.Errorf("e7 n=%d: %w", n, err)
		}
		return map[string]float64{
			"PTw":            float64(rep.PTW),
			"Tw":             float64(rep.TW),
			"bitsRecvW":      float64(rep.BitsReceivedW),
			"infoFloor":      float64(rep.InfoFloorBits),
			"rivinFloor":     rep.RivinFloor,
			"roundFloor":     rep.RoundFloor,
			"measuredRounds": float64(res.ScheduledRounds),
			"lbShape":        lower.PredictedListingRoundLB(n),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Finalize(func(n int) float64 { return math.Pow(float64(n), 4.0/3.0) })
	t.Notes = append(t.Notes,
		"Check() verified on every row: bits received by w(T) >= |P(T_w)| - (n-1), and |P(T_w)| >= Rivin floor")
	return t, nil
}

// --- E8: Proposition 5 local-listing measurements ----------------------

func runE8(cfg Config) (*Table, error) {
	t := &Table{
		ID: "e8", Title: "Proposition 5 quantities for local listing on G(n,1/2)",
		PaperBound: "each node receives Omega(n^2) bits => Omega(n/log n) rounds",
		Metric:     "maxNodeBits",
		Cols:       []string{"maxNodeBits", "minInfoFloor", "rounds", "lbShape"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		seed := cfg.Seed + 700 + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := graph.Gnp(n, 0.5, rng)
		sched, mk := baseline.NewTwoHop(g.N(), cfg.bandwidth(), g.MaxDegree(), baseline.TwoHopLocal)
		res, err := cells.RunSingle(g, sched, mk, cfg.simCfg(seed, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		reps := lower.AnalyzeLocal(g, res.Outputs, res.Metrics)
		if err := lower.CheckLocal(reps); err != nil {
			return nil, fmt.Errorf("e8 n=%d: %w", n, err)
		}
		var maxBits int64
		minFloor := int64(math.MaxInt64)
		for _, r := range reps {
			if r.BitsReceived > maxBits {
				maxBits = r.BitsReceived
			}
			if r.InfoFloorBits < minFloor {
				minFloor = r.InfoFloorBits
			}
		}
		return map[string]float64{
			"maxNodeBits":  float64(maxBits),
			"minInfoFloor": float64(minFloor),
			"rounds":       float64(res.ScheduledRounds),
			"lbShape":      lower.PredictedLocalRoundLB(n),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Finalize(func(n int) float64 { return float64(n) * float64(n) })
	return t, nil
}

// --- E9: trivial two-hop baseline -------------------------------------

func runE9(cfg Config) (*Table, error) {
	t := &Table{
		ID: "e9", Title: "Trivial two-hop lister on G(n,1/2): the linear-round baseline Thm 2 beats",
		PaperBound: "Theta(d_max) ~ n/2 rounds on dense graphs",
		Metric:     "rounds",
		Cols:       []string{"rounds", "dmax", "triangles"},
	}
	err := sweepSizes(t, cfg, func(i, n int) (map[string]float64, error) {
		seed := cfg.Seed + 800 + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := graph.Gnp(n, 0.5, rng)
		sched, mk := baseline.NewTwoHop(g.N(), cfg.bandwidth(), g.MaxDegree(), baseline.TwoHopGlobal)
		res, err := cells.RunSingle(g, sched, mk, cfg.simCfg(seed, sim.ModeCONGEST))
		if err != nil {
			return nil, err
		}
		if err := verifyListing(g, res); err != nil {
			return nil, fmt.Errorf("e9 n=%d: %w", n, err)
		}
		return map[string]float64{
			"rounds":    float64(res.ScheduledRounds),
			"dmax":      float64(g.MaxDegree()),
			"triangles": float64(len(res.Union)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Finalize(func(n int) float64 { return float64(n) / 2 })
	return t, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
