package expt

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// Churn experiment family: dynamic-graph workloads (sliding-window stream,
// random flips, preferential growth) measured as a sweep over batch size ×
// churn rate. Rows are batch sizes b (edges updated per epoch); the churn
// rate axis varies the base density m0 = k*n, so one batch size appears at
// several relative churn rates b/m0, reported as per-density speedup
// columns. Each cell runs one (workload, b, k) scenario for several
// epochs, applying every batch twice over: once through the
// IncrementalOracle (per-batch triangle deltas) and once as a full static
// recompute on a fresh snapshot, verifying the maintained count against
// the recompute at every epoch and the full triangle set at the last. The
// headline metric is the incremental-vs-full speedup, whose fitted
// exponent against b should approach -1: incremental work scales with the
// batch, full recompute does not.

// churnDensities returns the density multipliers k (m0 = k*n) that form
// the churn-rate axis.
func (c Config) churnDensities() []int {
	if c.Quick {
		return []int{2, 6}
	}
	return []int{4, 16}
}

// churnBatches returns the batch-size rows for a base size n.
func (c Config) churnBatches(n int) []int {
	bs := []int{n / 4, n, 4 * n}
	if c.Quick {
		bs = []int{n / 2, 2 * n}
	}
	out := bs[:0]
	for _, b := range bs {
		if b >= 1 {
			out = append(out, b)
		}
	}
	return out
}

func (c Config) churnEpochs() int {
	if c.Quick {
		return 4
	}
	return 8
}

// churnCell is the measured result of one (batch, density) scenario.
type churnCell struct {
	b, k       int
	speedup    float64
	born, died int64
}

func runChurnWindow(cfg Config) (*Table, error) {
	return runChurn(cfg, "churn-window", "Dynamic churn: sliding-window edge stream",
		func(d *dynamic.DynamicGraph, b int) dynamic.Workload {
			return dynamic.NewSlidingWindow(d, b, d.M())
		})
}

func runChurnFlip(cfg Config) (*Table, error) {
	return runChurn(cfg, "churn-flip", "Dynamic churn: random edge flips",
		func(d *dynamic.DynamicGraph, b int) dynamic.Workload {
			return dynamic.NewRandomFlip(b)
		})
}

func runChurnGrowth(cfg Config) (*Table, error) {
	return runChurn(cfg, "churn-growth", "Dynamic churn: preferential growth",
		func(d *dynamic.DynamicGraph, b int) dynamic.Workload {
			return dynamic.NewGrowth(d, b)
		})
}

// runChurn is the shared sweep: cells are the (batch, density) cross
// product, fanned across the Config.Workers pool like every other sweep,
// then reassembled into batch-size rows with one speedup column per
// density.
func runChurn(cfg Config, id, title string, mk func(d *dynamic.DynamicGraph, b int) dynamic.Workload) (*Table, error) {
	sizes := cfg.sizes()
	n := sizes[len(sizes)-1]
	bs := cfg.churnBatches(n)
	ks := cfg.churnDensities()
	epochs := cfg.churnEpochs()

	cols := []string{"epochs", "born", "died", "verified"}
	for _, k := range ks {
		cols = append(cols, speedupCol(k))
	}
	t := &Table{
		ID: id, Title: fmt.Sprintf("%s on n=%d, m0=k*n, %d epochs/cell", title, n, epochs),
		PaperBound: "incremental delta maintenance vs O(m^{3/2}) static re-listing per epoch",
		Metric:     speedupCol(ks[len(ks)-1]),
		Cols:       cols,
	}

	cells, err := runCells(cfg, len(bs)*len(ks), func(i int) (churnCell, bool, error) {
		b, k := bs[i/len(ks)], ks[i%len(ks)]
		cell, err := runChurnCell(cfg.Seed+int64(2000+i), n, b, k, epochs, mk)
		if err != nil {
			return churnCell{}, false, fmt.Errorf("%s b=%d k=%d: %w", id, b, k, err)
		}
		return cell, true, nil
	})
	if err != nil {
		return nil, err
	}

	for _, b := range bs {
		vals := map[string]float64{"epochs": float64(epochs), "verified": 1, "born": 0, "died": 0}
		for _, c := range cells {
			if c.b != b {
				continue
			}
			vals[speedupCol(c.k)] = c.speedup
			vals["born"] += float64(c.born)
			vals["died"] += float64(c.died)
		}
		t.AddPoint(b, vals)
	}
	// Incremental work grows with the batch while the full recompute does
	// not, so the speedup should fall off as ~1/b.
	t.Finalize(func(b int) float64 { return 1 / float64(b) })
	t.Notes = append(t.Notes,
		"rows are batch sizes; speedup(m0=k*n) columns are the churn-rate axis (same batch, denser base graph = lower relative churn)",
		"verified=1: the incremental count matched a fresh static recompute at every epoch, and the full triangle set at the final epoch")
	return t, nil
}

func speedupCol(k int) string { return fmt.Sprintf("speedup(m0=%dn)", k) }

// runChurnCell churns one scenario and times the incremental path against
// the full-recompute path batch by batch.
func runChurnCell(seed int64, n, b, k, epochs int, mk func(d *dynamic.DynamicGraph, b int) dynamic.Workload) (churnCell, error) {
	rng := rand.New(rand.NewSource(seed))
	d := dynamic.FromGraph(graph.Gnm(n, k*n, rng))
	o := dynamic.NewIncrementalOracle(d)
	w := mk(d, b)

	cell := churnCell{b: b, k: k}
	var incNs, fullNs int64
	for ep := 0; ep < epochs; ep++ {
		batch := w.Next(d, rng)
		t0 := time.Now()
		delta, err := o.Apply(batch)
		incNs += time.Since(t0).Nanoseconds()
		if err != nil {
			return cell, err
		}
		cell.born += int64(len(delta.Born))
		cell.died += int64(len(delta.Died))
		t1 := time.Now()
		full := o.FullCount()
		fullNs += time.Since(t1).Nanoseconds()
		if int64(full) != o.Count() {
			return cell, fmt.Errorf("epoch %d: incremental count %d, full recompute %d", ep+1, o.Count(), full)
		}
	}
	snap, _ := d.Snapshot()
	fresh := graph.ListTriangles(snap)
	graph.SortTriangles(fresh)
	if !slices.Equal(o.ListTriangles(), fresh) {
		return cell, fmt.Errorf("final triangle set diverges from fresh oracle")
	}
	if incNs <= 0 {
		incNs = 1
	}
	cell.speedup = float64(fullNs) / float64(incNs)
	return cell, nil
}
