// Package journal implements the durable append-only record log behind
// the service's crash-safe job store: a versioned little-endian container
// (mirroring internal/checkpoint's header/checksum discipline) holding a
// sequence of typed, individually checksummed records.
//
// File layout, all little-endian:
//
//	offset  size  field
//	0       4     magic "TRIJ"
//	4       4     version (uint32, currently 1)
//	8       8     reserved, must be zero in version 1
//	16      ...   records, back to back
//
// Record frame:
//
//	offset  size  field
//	0       4     payload length in bytes (uint32)
//	4       4     kind (uint32, caller-defined record type)
//	8       8     FNV-64a checksum over kind (4 LE bytes) || payload
//	16      ...   payload, exactly payload-length bytes
//
// Decoding is strict and fail-closed: a bad magic, version, checksum or
// absurd length is ErrCorrupt/ErrVersion — never a wrong-but-plausible
// record. The one sanctioned lenience is the torn tail: a process killed
// mid-append leaves a prefix of the final frame, which Open reports as
// ErrTruncated, drops, and truncates away so the log is append-clean
// again. Torn tails are distinguishable from corruption because frames are
// written with a single contiguous write: a crash can shorten the file,
// never scramble an earlier complete frame.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

const (
	fileMagic   = "TRIJ"
	fileVersion = 1
	headerLen   = 16
	frameLen    = 16

	// maxPayloadLen bounds a record payload read from a frame header
	// before any allocation (1 GiB — far beyond any job record, small
	// enough to reject absurd frames immediately).
	maxPayloadLen = 1 << 30
)

// Typed failure classes, all errors.Is-able through wrapping.
var (
	// ErrCorrupt reports a malformed or checksum-failing container.
	ErrCorrupt = errors.New("journal: corrupt container")
	// ErrVersion reports an unsupported container version.
	ErrVersion = errors.New("journal: unsupported version")
	// ErrTruncated reports data that ends mid-frame: the torn tail a
	// crash mid-append leaves behind. Replay treats it as clean
	// end-of-log (dropping the partial frame); any other decode failure
	// is corruption.
	ErrTruncated = errors.New("journal: truncated record")
)

// Record is one typed journal entry.
type Record struct {
	Kind    uint32
	Payload []byte
}

// EncodeRecord serializes one record frame.
func EncodeRecord(kind uint32, payload []byte) []byte {
	out := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], kind)
	binary.LittleEndian.PutUint64(out[8:16], recordSum(kind, payload))
	copy(out[frameLen:], payload)
	return out
}

// recordSum is the per-record FNV-64a checksum over kind || payload.
func recordSum(kind uint32, payload []byte) uint64 {
	h := fnv.New64a()
	var kb [4]byte
	binary.LittleEndian.PutUint32(kb[:], kind)
	h.Write(kb[:])
	h.Write(payload)
	return h.Sum64()
}

// DecodeRecord parses one record frame from the front of data, returning
// the record, the remaining bytes, and the frame's encoded length. Data
// that ends mid-frame is ErrTruncated; a complete frame that fails its
// checksum or declares an absurd length is ErrCorrupt.
func DecodeRecord(data []byte) (Record, []byte, error) {
	if len(data) < frameLen {
		return Record{}, nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte frame header", ErrTruncated, len(data), frameLen)
	}
	plen := binary.LittleEndian.Uint32(data[0:4])
	if plen > maxPayloadLen {
		return Record{}, nil, fmt.Errorf("%w: absurd payload length %d", ErrCorrupt, plen)
	}
	kind := binary.LittleEndian.Uint32(data[4:8])
	if uint64(len(data)-frameLen) < uint64(plen) {
		return Record{}, nil, fmt.Errorf("%w: frame declares %d payload bytes, %d remain", ErrTruncated, plen, len(data)-frameLen)
	}
	payload := data[frameLen : frameLen+plen]
	if got, exp := recordSum(kind, payload), binary.LittleEndian.Uint64(data[8:16]); got != exp {
		return Record{}, nil, fmt.Errorf("%w: record checksum %#x, stored %#x", ErrCorrupt, got, exp)
	}
	rec := Record{Kind: kind, Payload: append([]byte(nil), payload...)}
	return rec, data[frameLen+plen:], nil
}

// encodeHeader builds the 16-byte file header.
func encodeHeader() []byte {
	out := make([]byte, headerLen)
	copy(out[0:4], fileMagic)
	binary.LittleEndian.PutUint32(out[4:8], fileVersion)
	return out
}

// checkHeader validates the file header bytes.
func checkHeader(data []byte) error {
	if len(data) < headerLen {
		return fmt.Errorf("%w: %d bytes is shorter than the %d-byte file header", ErrTruncated, len(data), headerLen)
	}
	if string(data[0:4]) != fileMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != fileVersion {
		return fmt.Errorf("%w: version %d (want %d)", ErrVersion, v, fileVersion)
	}
	for _, b := range data[8:headerLen] {
		if b != 0 {
			return fmt.Errorf("%w: nonzero reserved header bytes", ErrCorrupt)
		}
	}
	return nil
}

// Decode parses a whole journal image strictly: header plus records, no
// lenience at all — a torn tail is ErrTruncated, everything else
// ErrCorrupt/ErrVersion. It is the fuzzing and verification entry point;
// crash recovery goes through Open, which tolerates (and repairs) the
// tail.
func Decode(data []byte) ([]Record, error) {
	if err := checkHeader(data); err != nil {
		return nil, err
	}
	var recs []Record
	rest := data[headerLen:]
	for len(rest) > 0 {
		rec, tail, err := DecodeRecord(rest)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		rest = tail
	}
	return recs, nil
}

// Writer is an append-only journal handle. Every Append is flushed with
// fsync before returning, so an acknowledged record survives kill -9; a
// crash mid-append loses at most the record being written. Writer is not
// safe for concurrent use; callers serialize.
type Writer struct {
	f *os.File
}

// Open opens (or creates) the journal at path, replays its records, and
// returns a Writer positioned for appends. A torn final record — the
// kill -9 signature — is dropped and truncated away; any other decode
// failure fails closed with the typed error. The returned records are in
// append order.
func Open(path string) (*Writer, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if len(data) == 0 {
		// Fresh file: write the header.
		if _, err := f.Write(encodeHeader()); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &Writer{f: f}, nil, nil
	}
	if err := checkHeader(data); err != nil {
		f.Close()
		return nil, nil, err
	}
	var recs []Record
	good := headerLen // offset of the last cleanly decoded frame boundary
	rest := data[headerLen:]
	for len(rest) > 0 {
		rec, tail, err := DecodeRecord(rest)
		if errors.Is(err, ErrTruncated) {
			// Torn tail: drop the partial frame and truncate so the next
			// append starts on a clean boundary.
			if err := f.Truncate(int64(good)); err != nil {
				f.Close()
				return nil, nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, err
			}
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		recs = append(recs, rec)
		good += frameLen + len(rec.Payload)
		rest = tail
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Writer{f: f}, recs, nil
}

// Append writes one record frame and fsyncs it.
func (w *Writer) Append(kind uint32, payload []byte) error {
	if _, err := w.f.Write(EncodeRecord(kind, payload)); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close closes the underlying file.
func (w *Writer) Close() error {
	return w.f.Close()
}

// ReadFile replays a journal file read-only, with the same torn-tail
// lenience as Open (but without repairing the file).
func ReadFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, nil
	}
	if err := checkHeader(data); err != nil {
		return nil, err
	}
	var recs []Record
	rest := data[headerLen:]
	for len(rest) > 0 {
		rec, tail, err := DecodeRecord(rest)
		if errors.Is(err, ErrTruncated) {
			break
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		rest = tail
	}
	return recs, nil
}
