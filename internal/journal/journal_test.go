package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleRecords is a mixed-kind, mixed-size record sequence (including an
// empty payload, which must round-trip too).
func sampleRecords() []Record {
	return []Record{
		{Kind: 1, Payload: []byte(`{"id":"job-1"}`)},
		{Kind: 2, Payload: nil},
		{Kind: 3, Payload: bytes.Repeat([]byte("x"), 1024)},
		{Kind: 7, Payload: []byte{0, 1, 2, 0xFF}},
	}
}

func writeSample(t *testing.T, path string) []Record {
	t.Helper()
	w, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := sampleRecords()
	for _, r := range want {
		if err := w.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// recordsEqual compares modulo the nil-vs-empty payload distinction,
// which the container does not preserve (an empty payload decodes as
// empty, not nil).
func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

// TestJournalAppendReopen: records appended in one session replay
// identically in the next, and appends continue cleanly after a reopen.
func TestJournalAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	want := writeSample(t, path)

	w, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if err := w.Append(9, []byte("post-reopen")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	got2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(want)+1 || got2[len(want)].Kind != 9 {
		t.Fatalf("post-reopen append lost: %+v", got2)
	}
}

// TestJournalTornTail: a partial final frame — the kill -9 signature — is
// dropped on Open, the file is repaired, and subsequent appends land
// cleanly.
func TestJournalTornTail(t *testing.T) {
	for cut := 1; cut < frameLen+8; cut += 3 {
		path := filepath.Join(t.TempDir(), "jobs.journal")
		want := writeSample(t, path)
		// Tear: append a frame, then chop `cut` bytes short of its end.
		full := EncodeRecord(42, []byte("torn away by the crash"))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, full[:len(full)-cut]...)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		w, got, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !recordsEqual(got, want) {
			t.Fatalf("cut %d: torn tail corrupted earlier records", cut)
		}
		if err := w.Append(5, []byte("after repair")); err != nil {
			t.Fatal(err)
		}
		w.Close()
		got2, err := ReadFile(path)
		if err != nil {
			t.Fatalf("cut %d: reread after repair: %v", cut, err)
		}
		if len(got2) != len(want)+1 || got2[len(want)].Kind != 5 {
			t.Fatalf("cut %d: repair did not leave a clean append boundary", cut)
		}
	}
}

// TestJournalFailsClosed: mid-file corruption (not a torn tail) is a
// typed, fail-closed error from both Open and Decode.
func TestJournalFailsClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	writeSample(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xFF; return d }, ErrCorrupt},
		{"bad version", func(d []byte) []byte { d[4] = 99; return d }, ErrVersion},
		{"nonzero reserved", func(d []byte) []byte { d[12] = 1; return d }, ErrCorrupt},
		{"first record checksum", func(d []byte) []byte { d[headerLen+frameLen] ^= 0xFF; return d }, ErrCorrupt},
		{"first record kind", func(d []byte) []byte { d[headerLen+4] ^= 0xFF; return d }, ErrCorrupt},
		{"absurd length", func(d []byte) []byte {
			d[headerLen+3] = 0xFF // payload length high byte: > maxPayloadLen
			return d
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		mut := tc.mutate(append([]byte(nil), data...))
		p := filepath.Join(t.TempDir(), "mut.journal")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(p); !errors.Is(err, tc.want) {
			t.Errorf("%s: Open err %v, want %v", tc.name, err, tc.want)
		}
		if _, err := Decode(mut); !errors.Is(err, tc.want) {
			t.Errorf("%s: Decode err %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestJournalDecodeStrict: the strict whole-image decoder flags torn
// tails as ErrTruncated rather than silently dropping them.
func TestJournalDecodeStrict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	writeSample(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err != nil {
		t.Fatalf("clean image rejected: %v", err)
	}
	if _, err := Decode(data[:len(data)-3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn image: err %v, want ErrTruncated", err)
	}
	if _, err := Decode(data[:headerLen-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn header: err %v, want ErrTruncated", err)
	}
}

// FuzzJournalRoundTrip pins the record frame's fail-closed contract,
// mirroring FuzzCheckpointRoundTrip: whatever bytes arrive, DecodeRecord
// either rejects them with a typed error or accepts a record — and every
// accepted record re-encodes byte-identically to the bytes it consumed.
// There is no third outcome (a wrong-but-successful replay source).
func FuzzJournalRoundTrip(f *testing.F) {
	valid := EncodeRecord(3, []byte("fuzz seed payload"))
	f.Add(valid)
	f.Add(valid[:frameLen])     // header intact, payload missing -> truncated
	f.Add(valid[:7])            // sub-frame truncation
	f.Add(EncodeRecord(0, nil)) // empty payload, kind 0
	for _, off := range []int{0, 3, 4, 8, 15, frameLen, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xFF
		f.Add(mut)
	}
	f.Add(append(append([]byte(nil), valid...), valid...)) // two frames back to back
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, rest, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("DecodeRecord failed with untyped error: %v", err)
			}
			return
		}
		consumed := data[:len(data)-len(rest)]
		re := EncodeRecord(rec.Kind, rec.Payload)
		if !bytes.Equal(re, consumed) {
			t.Fatalf("accepted record does not re-encode byte-identically")
		}
		rec2, rest2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(rest2) != 0 || rec2.Kind != rec.Kind || !bytes.Equal(rec2.Payload, rec.Payload) {
			t.Fatalf("re-decode disagrees with first decode")
		}
	})
}

// TestJournalWholeFileRoundTrip: a full journal image decodes to the
// records that were appended, and Decode(re-encoded image) agrees.
func TestJournalWholeFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	want := writeSample(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(got, want) {
		t.Fatalf("decode mismatch: %+v", got)
	}
	// Rebuild the image from the decoded records: byte-identical.
	re := encodeHeader()
	for _, r := range got {
		re = append(re, EncodeRecord(r.Kind, r.Payload)...)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("journal image does not re-encode byte-identically")
	}
	if !reflect.DeepEqual(got, got) {
		t.Fatal("unreachable")
	}
}
