// Package httpapi implements the triserve HTTP JSON API over one
// congest.Service. It is split from cmd/triserve so both the server
// binary and the trictl client tests can stand up the exact production
// handler.
//
// Error discipline: every non-2xx response is a JSON body with a
// machine-readable "error" field — including the mux's own 404/405
// fallbacks. Admission-control rejections are 429 with a Retry-After
// header (whole seconds, from the service's backoff hint); submissions
// to a draining or closed service are 503.
//
// Submission endpoints accept admission metadata as query parameters
// (the body is exactly the JobSpec, same as a synchronous run):
//
//	tenant    quota accounting ("" = anonymous)
//	key       idempotency key, scoped per tenant: retries are safe
//	priority  integer, higher runs first
//	deadline  Go duration (e.g. "30s"), capped at the server deadline
//
// Unknown query parameters are a 400, mirroring the strict unknown-field
// handling of job spec bodies. GET /v1/jobs/{id} additionally accepts
// wait=<duration> to long-poll until the job is terminal (or the wait
// expires), which is what trictl watch uses.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/congest"
)

// maxBodyBytes bounds request bodies; specs are small (inline edge lists
// included) and anything bigger is abuse.
const maxBodyBytes = 4 << 20

// maxWait caps the long-poll duration of GET /v1/jobs/{id}?wait=...
const maxWait = 60 * time.Second

// jobView is the wire form of a job's state.
type jobView struct {
	ID       string            `json:"id"`
	Status   congest.JobStatus `json:"status"`
	Tenant   string            `json:"tenant,omitempty"`
	Key      string            `json:"key,omitempty"`
	Priority int               `json:"priority,omitempty"`
	Spec     congest.JobSpec   `json:"spec"`
	Result   *congest.Result   `json:"result,omitempty"`
	Error    string            `json:"error,omitempty"`
}

func viewOf(j *congest.Job) jobView {
	v := jobView{ID: j.ID(), Status: j.Status(), Tenant: j.Tenant(), Key: j.Key(), Priority: j.Priority(), Spec: j.Spec()}
	if res, err, terminal := j.Result(); terminal {
		r := res
		v.Result = &r
		if err != nil {
			v.Error = err.Error()
		}
	}
	return v
}

// New builds the HTTP API over one service.
func New(svc *congest.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, congest.AlgorithmNames())
	})
	mux.HandleFunc("GET /v1/generators", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, congest.GeneratorNames())
	})
	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, congest.Experiments())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		req, ok := readSubmit(w, r)
		if !ok {
			return
		}
		// Synchronous runs go through the same Service as async ones, so the
		// -workers budget bounds them too. The request context cancels the
		// job when the client goes away; the deterministic prefix is still
		// returned (with meta.cancelled set) in case the write still
		// reaches someone.
		j, err := svc.SubmitJob(req)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		select {
		case <-j.Done():
		case <-r.Context().Done():
			j.Cancel()
			<-j.Done()
		}
		res, err, _ := j.Result()
		if err != nil && !res.Meta.Cancelled {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		req, ok := readSubmit(w, r)
		if !ok {
			return
		}
		j, err := svc.SubmitJob(req)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, viewOf(j))
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := svc.Jobs()
		views := make([]jobView, len(jobs))
		for i, j := range jobs {
			views[i] = viewOf(j)
		}
		writeJSON(w, http.StatusOK, views)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := svc.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such job"))
			return
		}
		if v := r.URL.Query().Get("wait"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait duration %q", v))
				return
			}
			if d > maxWait {
				d = maxWait
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-j.Done():
			case <-t.C:
			case <-r.Context().Done():
			}
		}
		writeJSON(w, http.StatusOK, viewOf(j))
	})
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		j, ok := svc.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such job"))
			return
		}
		j.Cancel()
		<-j.Done()
		writeJSON(w, http.StatusOK, viewOf(j))
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := svc.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such job"))
			return
		}
		if err := svc.Delete(j.ID()); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, viewOf(j))
	})
	return &api{mux: mux}
}

// api wraps the mux so unrouted requests get the same JSON error bodies
// as routed ones: the stock ServeMux fallbacks write text/plain, which
// would be the one place a client sees a non-JSON error.
type api struct {
	mux *http.ServeMux
}

func (a *api) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, pattern := a.mux.Handler(r); pattern != "" {
		a.mux.ServeHTTP(w, r)
		return
	}
	// No route. Probe the mux's own fallback for the status (404 vs 405)
	// and its Allow header, then answer in JSON.
	probe := &statusProbe{header: make(http.Header)}
	a.mux.ServeHTTP(probe, r)
	code := probe.code
	if code == 0 {
		code = http.StatusNotFound
	}
	if allow := probe.header.Get("Allow"); allow != "" {
		w.Header().Set("Allow", allow)
	}
	writeError(w, code, errors.New(http.StatusText(code)))
}

// statusProbe is a throwaway ResponseWriter capturing only status and
// headers.
type statusProbe struct {
	header http.Header
	code   int
}

func (p *statusProbe) Header() http.Header { return p.header }
func (p *statusProbe) WriteHeader(code int) {
	if p.code == 0 {
		p.code = code
	}
}
func (p *statusProbe) Write(b []byte) (int, error) {
	if p.code == 0 {
		p.code = http.StatusOK
	}
	return len(b), nil
}

// readSubmit decodes a strict JobSpec body plus the admission query
// parameters, answering 400 on any shape problem (unknown fields and
// unknown query parameters included).
func readSubmit(w http.ResponseWriter, r *http.Request) (congest.SubmitRequest, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return congest.SubmitRequest{}, false
	}
	spec, err := congest.ParseJobSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return congest.SubmitRequest{}, false
	}
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "tenant", "key", "priority", "deadline":
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown query parameter %q", k))
			return congest.SubmitRequest{}, false
		}
	}
	req := congest.SubmitRequest{Spec: spec, Tenant: q.Get("tenant"), Key: q.Get("key")}
	if v := q.Get("priority"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad priority %q", v))
			return congest.SubmitRequest{}, false
		}
		req.Priority = p
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad deadline %q", v))
			return congest.SubmitRequest{}, false
		}
		req.Deadline = d
	}
	return req, true
}

// writeSubmitError maps a Service submission failure: saturation is 429
// with Retry-After, a draining/closed service is 503.
func writeSubmitError(w http.ResponseWriter, err error) {
	var sat *congest.SaturatedError
	if errors.As(err, &sat) {
		secs := int(math.Ceil(sat.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeError(w, http.StatusServiceUnavailable, err)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
