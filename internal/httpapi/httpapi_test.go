package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/congest"
)

func startServer(t *testing.T, opts ...congest.Option) *httptest.Server {
	t.Helper()
	svc := congest.NewService(opts...)
	srv := httptest.NewServer(New(svc))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv
}

func do(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// errorField asserts the machine-readable JSON error body contract and
// returns the error string.
func errorField(t *testing.T, body []byte) string {
	t.Helper()
	var v struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &v); err != nil || v.Error == "" {
		t.Fatalf("error body not machine-readable: %v\n%s", err, body)
	}
	return v.Error
}

const fastSpec = `{"graph":{"generator":"gnp","n":24,"p":0.5,"seed":1},"algo":"find","seed":7}`
const slowSpec = `{"graph":{"generator":"gnp","n":96,"p":0.5,"seed":1},"algo":"list","seed":1,"verify":"none"}`

// TestAPISubmitMetadata: admission metadata rides on query parameters,
// is echoed in the job view, and idempotency keys deduplicate retries.
func TestAPISubmitMetadata(t *testing.T) {
	srv := startServer(t)
	resp, body := do(t, http.MethodPost, srv.URL+"/v1/jobs?tenant=acme&key=k1&priority=7", fastSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var v struct {
		ID       string `json:"id"`
		Tenant   string `json:"tenant"`
		Key      string `json:"key"`
		Priority int    `json:"priority"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "acme" || v.Key != "k1" || v.Priority != 7 {
		t.Fatalf("metadata not echoed: %+v", v)
	}
	// The retry returns the same job, not a duplicate.
	resp2, body2 := do(t, http.MethodPost, srv.URL+"/v1/jobs?tenant=acme&key=k1&priority=7", fastSpec)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("retry status %d", resp2.StatusCode)
	}
	var v2 struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body2, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.ID != v.ID {
		t.Fatalf("idempotent retry created %s, want %s", v2.ID, v.ID)
	}
	// Long-poll until terminal.
	resp3, body3 := do(t, http.MethodGet, srv.URL+"/v1/jobs/"+v.ID+"?wait=30s", "")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("wait status %d", resp3.StatusCode)
	}
	var done struct {
		Status congest.JobStatus `json:"status"`
		Result *congest.Result   `json:"result"`
	}
	if err := json.Unmarshal(body3, &done); err != nil {
		t.Fatal(err)
	}
	if done.Status != congest.JobDone || done.Result == nil {
		t.Fatalf("long-poll returned %s without result", done.Status)
	}
}

// TestAPISaturation: a tenant over quota gets 429 with a Retry-After
// header and a JSON error body; other tenants are unaffected.
func TestAPISaturation(t *testing.T) {
	srv := startServer(t, congest.WithWorkers(1), congest.WithTenantQuota(1))
	resp, body := do(t, http.MethodPost, srv.URL+"/v1/jobs?tenant=a", slowSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d: %s", resp.StatusCode, body)
	}
	var first struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	resp2, body2 := do(t, http.MethodPost, srv.URL+"/v1/jobs?tenant=a", slowSpec)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d: %s", resp2.StatusCode, body2)
	}
	ra := resp2.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q", ra)
	}
	if msg := errorField(t, body2); !strings.Contains(msg, "saturated") {
		t.Fatalf("error body %q", msg)
	}

	resp3, body3 := do(t, http.MethodPost, srv.URL+"/v1/jobs?tenant=b", fastSpec)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant status %d: %s", resp3.StatusCode, body3)
	}
	// Stats reflect the load and the tenant attribution.
	_, stats := do(t, http.MethodGet, srv.URL+"/v1/stats", "")
	var st congest.ServiceStats
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 || st.Tenants["a"] != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Unblock the slow job so Cleanup's drain is quick.
	do(t, http.MethodPost, srv.URL+"/v1/jobs/"+first.ID+"/cancel", "")
}

// TestAPIStrictParams: unknown or malformed query parameters are 400s
// with machine-readable bodies, like unknown spec fields.
func TestAPIStrictParams(t *testing.T) {
	srv := startServer(t)
	cases := []struct {
		method, path, body string
	}{
		{http.MethodPost, "/v1/jobs?tenannt=a", fastSpec},
		{http.MethodPost, "/v1/jobs?priority=high", fastSpec},
		{http.MethodPost, "/v1/jobs?deadline=never", fastSpec},
		{http.MethodPost, "/v1/jobs?deadline=-5s", fastSpec},
		{http.MethodPost, "/v1/run?wait=1s", fastSpec},
	}
	for _, tc := range cases {
		resp, body := do(t, tc.method, srv.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", tc.method, tc.path, resp.StatusCode)
			continue
		}
		errorField(t, body)
	}
	// Bad wait on the job getter too (after creating a real job).
	resp, body := do(t, http.MethodPost, srv.URL+"/v1/jobs", fastSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	resp2, body2 := do(t, http.MethodGet, srv.URL+"/v1/jobs/"+v.ID+"?wait=forever", "")
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait status %d", resp2.StatusCode)
	}
	errorField(t, body2)
}

// TestAPIFallbackJSON: even unrouted requests answer in JSON — 404 for
// unknown paths, 405 (with Allow) for wrong methods.
func TestAPIFallbackJSON(t *testing.T) {
	srv := startServer(t)
	resp, body := do(t, http.MethodGet, srv.URL+"/nope", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("404 content type %q", ct)
	}
	errorField(t, body)

	resp2, body2 := do(t, http.MethodDelete, srv.URL+"/v1/run", "")
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("wrong method status %d", resp2.StatusCode)
	}
	if resp2.Header.Get("Allow") == "" {
		t.Fatal("405 without Allow header")
	}
	errorField(t, body2)
}
