//go:build race

package repro

// raceEnabled reports whether this test binary was built with -race; the
// million-node scale tests skip under it (the detector multiplies their
// memory and runtime without adding coverage the small-graph equivalence
// tests don't already have under -race).
const raceEnabled = true
